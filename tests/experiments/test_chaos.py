"""Tests for the chaos experiment (storage-fault probability sweep)."""

import pytest

from repro.errors import ReproError
from repro.experiments import run_experiment
from repro.experiments.chaos import ChaosSetup, _predict, run


@pytest.fixture(scope="module")
def quick_result():
    """One shared quick sweep (a few seconds of simulation)."""
    return run(quick=True)


class TestSweep:
    def test_registered_and_renders(self, quick_result):
        assert quick_result.experiment == "chaos"
        rendered = quick_result.render()
        assert "write-fail" in rendered and "corrupt" in rendered

    def test_rows_cover_both_modes_and_all_probs(self, quick_result):
        modes = {row[0] for row in quick_result.rows}
        assert modes == {"write-fail", "corrupt"}
        probs = sorted({row[1] for row in quick_result.rows})
        assert probs == [0.0, 0.1, 0.3]

    def test_fault_free_row_is_strict_noop(self, quick_result):
        assert quick_result.findings["fault_free_is_noop"] is True
        zero_rows = [row for row in quick_result.rows if row[1] == 0.0]
        for row in zero_rows:
            assert row[2] == quick_result.findings["baseline_total_time_s"]

    def test_corruption_exercises_recovery_fallback(self, quick_result):
        """Acceptance: corruption > 0 falls back past the newest recovery
        line (depth > 1) without raising."""
        assert quick_result.findings["max_rollback_depth_observed"] > 1
        corrupt_rows = [
            row for row in quick_result.rows if row[0] == "corrupt" and row[1] > 0
        ]
        assert any(row[8] > 0 for row in corrupt_rows)  # lines skipped

    def test_corruption_slows_the_job_down(self, quick_result):
        by_prob = {
            row[1]: row[2] for row in quick_result.rows if row[0] == "corrupt"
        }
        assert by_prob[0.3] > by_prob[0.1] > by_prob[0.0]

    def test_write_failures_surface_as_retries(self, quick_result):
        rows = [
            row for row in quick_result.rows if row[0] == "write-fail" and row[1] > 0
        ]
        assert any(row[6] > 0 for row in rows)  # retries

    def test_run_experiment_dispatch(self):
        result = run_experiment("chaos", probs=(0.0, 0.2))
        assert result.experiment == "chaos"

    def test_invalid_probability_rejected(self):
        with pytest.raises(ReproError):
            run(probs=(0.0, 1.5))


class TestPrediction:
    def test_zero_prob_matches_plain_model(self):
        setup = ChaosSetup()
        base = _predict(setup, 0.2, "write-fail", 0.0)
        assert _predict(setup, 0.2, "corrupt", 0.0) == base
        assert base > setup.expected_base_time

    def test_faults_only_increase_the_prediction(self):
        setup = ChaosSetup()
        base = _predict(setup, 0.2, "corrupt", 0.0)
        assert _predict(setup, 0.2, "corrupt", 0.2) > base
        assert _predict(setup, 0.2, "write-fail", 0.9) > base

    def test_certain_write_failure_diverges(self):
        setup = ChaosSetup()
        assert _predict(setup, 0.2, "write-fail", 1.0) == float("inf")
