"""Tests for repro.units."""

import pytest
from hypothesis import given, strategies as st

from repro import units
from repro.errors import ConfigurationError


class TestConversions:
    def test_minutes(self):
        assert units.minutes(2) == 120.0

    def test_hours(self):
        assert units.hours(1) == 3600.0

    def test_days(self):
        assert units.days(1) == 86400.0

    def test_years(self):
        assert units.years(1) == pytest.approx(365.25 * 86400)

    def test_seconds_identity(self):
        assert units.seconds(42) == 42.0

    def test_to_minutes_inverts_minutes(self):
        assert units.to_minutes(units.minutes(7.5)) == pytest.approx(7.5)

    def test_to_hours_inverts_hours(self):
        assert units.to_hours(units.hours(128)) == pytest.approx(128)

    def test_to_years_inverts_years(self):
        assert units.to_years(units.years(5)) == pytest.approx(5)

    @given(st.floats(min_value=0, max_value=1e12, allow_nan=False))
    def test_roundtrip_hours(self, value):
        assert units.to_hours(units.hours(value)) == pytest.approx(value)

    def test_mib(self):
        assert units.mib(1) == 1024 * 1024

    def test_gib(self):
        assert units.gib(2) == 2 * 1024**3


class TestParseDuration:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("6h", 21600.0),
            ("46min", 2760.0),
            ("5y", 5 * units.SECONDS_PER_YEAR),
            ("120s", 120.0),
            ("120 sec", 120.0),
            ("1.5hr", 5400.0),
            ("2d", 172800.0),
            ("42", 42.0),
            ("3m", 180.0),
        ],
    )
    def test_examples(self, text, expected):
        assert units.parse_duration(text) == pytest.approx(expected)

    def test_rejects_garbage(self):
        with pytest.raises(ConfigurationError):
            units.parse_duration("soon")

    def test_rejects_bad_number(self):
        with pytest.raises(ConfigurationError):
            units.parse_duration("x2h")


class TestFormatting:
    def test_hours_format(self):
        assert units.fmt_duration(units.hours(128)) == "128h00m"

    def test_minutes_format(self):
        assert units.fmt_duration(150.0) == "2m30s"

    def test_seconds_format(self):
        assert units.fmt_duration(12.04) == "12.0s"

    def test_negative(self):
        assert units.fmt_duration(-60.0) == "-1m00s"

    def test_rounding_carry_minutes(self):
        # 59m59.7s rounds to the next hour without showing 60m.
        assert units.fmt_duration(3599.7) == "1h00m"

    def test_bytes_format(self):
        assert units.fmt_bytes(units.gib(1.5)) == "1.5GiB"
        assert units.fmt_bytes(512) == "512B"
        assert units.fmt_bytes(units.mib(3)) == "3.0MiB"
