"""Tests for replica-copy voting and copy planning."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import VotingError
from repro.redundancy import ALL_TO_ALL, MSG_PLUS_HASH, vote
from repro.redundancy.voting import ReplicaCopy, plan_copies
from repro.mpi.datatypes import payload_digest


def full(sender, payload):
    return ReplicaCopy.full(sender, payload)


def hash_copy(sender, payload):
    return ReplicaCopy.hash_only(sender, payload_digest(payload))


class TestVote:
    def test_single_copy(self):
        result = vote([full(0, "data")])
        assert result.payload == "data"
        assert result.unanimous
        assert result.corrupt_senders == ()

    def test_unanimous_pair(self):
        result = vote([full(0, 42), full(3, 42)])
        assert result.payload == 42 and result.unanimous

    def test_majority_corrects_corrupt_copy(self):
        result = vote([full(0, "good"), full(1, "good"), full(2, "BAD")])
        assert result.payload == "good"
        assert not result.unanimous
        assert result.corrupt_senders == (2,)

    def test_two_way_disagreement_undecidable(self):
        with pytest.raises(VotingError):
            vote([full(0, "a"), full(1, "b")])

    def test_no_copies(self):
        with pytest.raises(VotingError):
            vote([])

    def test_hash_copies_count_toward_majority(self):
        copies = [full(0, "x"), hash_copy(1, "x"), hash_copy(2, "x")]
        result = vote(copies)
        assert result.payload == "x" and result.unanimous

    def test_hash_majority_without_payload_carrier(self):
        # Corrupt payload carrier + r=2: detectable, not correctable.
        copies = [full(0, "CORRUPT"), hash_copy(1, "good")]
        with pytest.raises(VotingError):
            vote(copies)

    def test_hash_majority_with_three_copies_corrects(self):
        # Carrier corrupt but a second full copy carries the majority value.
        copies = [full(0, "CORRUPT"), full(1, "good"), hash_copy(2, "good")]
        result = vote(copies)
        assert result.payload == "good"
        assert result.corrupt_senders == (0,)

    @given(st.integers(min_value=1, max_value=7))
    def test_identical_copies_always_unanimous(self, count):
        result = vote([full(i, b"same") for i in range(count)])
        assert result.unanimous and result.payload == b"same"

    def test_three_way_tie_rejected(self):
        with pytest.raises(VotingError):
            vote([full(0, "a"), full(1, "b"), full(2, "c")])


class TestPlanCopies:
    def test_all_to_all_everything_full(self):
        plan = plan_copies([0, 4], [1, 5], ALL_TO_ALL)
        assert set(plan.values()) == {"full"}
        assert len(plan) == 4

    def test_msg_plus_hash_one_carrier_per_receiver(self):
        senders = [0, 4, 8]
        receivers = [1, 5, 9]
        plan = plan_copies(senders, receivers, MSG_PLUS_HASH)
        for receiver in receivers:
            kinds = [plan[(s, receiver)] for s in senders]
            assert kinds.count("full") == 1
            assert kinds.count("hash") == len(senders) - 1

    def test_msg_plus_hash_unequal_spheres(self):
        plan = plan_copies([0], [1, 5], MSG_PLUS_HASH)
        # A single sender carries the payload for both receivers.
        assert plan[(0, 1)] == "full" and plan[(0, 5)] == "full"

    def test_partial_spheres(self):
        plan = plan_copies([0, 4], [1], MSG_PLUS_HASH)
        kinds = [plan[(0, 1)], plan[(4, 1)]]
        assert kinds.count("full") == 1 and kinds.count("hash") == 1

    def test_empty_senders_empty_plan(self):
        assert plan_copies([], [1, 2], ALL_TO_ALL) == {}

    def test_unknown_mode(self):
        with pytest.raises(VotingError):
            plan_copies([0], [1], "telepathy")

    @given(
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=1, max_value=4),
        st.sampled_from([ALL_TO_ALL, MSG_PLUS_HASH]),
    )
    def test_plan_covers_all_pairs(self, senders, receivers, mode):
        sender_list = list(range(senders))
        receiver_list = list(range(100, 100 + receivers))
        plan = plan_copies(sender_list, receiver_list, mode)
        assert set(plan) == {(s, r) for s in sender_list for r in receiver_list}
