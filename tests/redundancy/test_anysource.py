"""Focused tests for the ANY_SOURCE envelope-forwarding protocol."""

import pytest

from repro.errors import RedundancyError
from repro.mpi import ANY_SOURCE, SimMPI
from repro.redundancy import RedComm, ReplicaMap, SphereTracker
from repro.redundancy.anysource import CONTROL_TAG_BASE, anysource_recv
from repro.simkit import Environment


def run_world(n, r, body, kill_plan=()):
    env = Environment()
    rmap = ReplicaMap(n, r)
    tracker = SphereTracker(rmap)
    world = SimMPI(env, size=rmap.total_physical)
    results = {}

    def program(ctx):
        red = RedComm(ctx, rmap, tracker)
        value = yield from body(red)
        results[ctx.rank] = value
        return value

    world.spawn(program)
    for delay, rank in kill_plan:
        def killer(env, delay=delay, rank=rank):
            yield env.timeout(delay)
            world.kill_rank(rank)

        env.process(killer(env))
    world.run()
    return world, rmap, tracker, results


class TestProtocol:
    def test_payload_and_virtual_source(self):
        def body(red):
            if red.rank == 0:
                payload, status = yield from red.recv(source=ANY_SOURCE, tag=3)
                return payload, status.source
            if red.rank == 2:
                yield from red.send("from-two", 0, tag=3)
            return None

        _, rmap, _, results = run_world(3, 2.0, body)
        for physical in rmap.replicas_of(0):
            assert results[physical] == ("from-two", 2)

    def test_interleaved_wildcards_and_specific_recvs(self):
        def body(red):
            if red.rank == 0:
                wild, wild_status = yield from red.recv(source=ANY_SOURCE, tag=1)
                specific, _ = yield from red.recv(source=1, tag=2)
                return wild_status.source, specific
            if red.rank == 1:
                yield from red.send("wild", 0, tag=1)
                yield from red.send("specific", 0, tag=2)
            return None

        _, rmap, _, results = run_world(2, 2.0, body)
        for physical in rmap.replicas_of(0):
            assert results[physical] == (1, "specific")

    def test_sequential_wildcards_consume_distinct_messages(self):
        def body(red):
            if red.rank == 0:
                sources = []
                for _ in range(red.size - 1):
                    _, status = yield from red.recv(source=ANY_SOURCE, tag=5)
                    sources.append(status.source)
                return sorted(sources)
            yield from red.send(red.rank, 0, tag=5)
            return None

        _, rmap, _, results = run_world(4, 2.0, body)
        for physical in rmap.replicas_of(0):
            assert results[physical] == [1, 2, 3]

    def test_works_from_unreplicated_receiver(self):
        # Partial redundancy: the receiver has one replica (trivial
        # protocol), senders have two.
        def body(red):
            if red.rank == 1:  # odd rank: unreplicated under 1.5x
                payload, status = yield from red.recv(source=ANY_SOURCE, tag=4)
                return payload, status.source
            if red.rank == 0:
                yield from red.send("dup", 1, tag=4)
            return None

        _, rmap, _, results = run_world(4, 1.5, body)
        assert rmap.replication_of(1) == 1
        assert results[1] == ("dup", 0)

    def test_lead_failover_before_call(self):
        # Kill virtual 0's primary *before* the wildcard call: the
        # shadow becomes the lead and runs the protocol alone.
        def body(red):
            if red.rank == 0:
                yield red.env.timeout(0.01)  # after the kill
                payload, status = yield from red.recv(source=ANY_SOURCE, tag=6)
                return payload, status.source
            if red.rank == 1:
                yield red.env.timeout(0.02)
                yield from red.send("late", 0, tag=6)
            return None

        _, rmap, tracker, results = run_world(
            2, 2.0, body, kill_plan=[(0.001, 0)]  # primary of virtual 0
        )
        shadow = rmap.replicas_of(0)[1]
        assert results[shadow] == ("late", 1)
        assert not tracker.job_failed

    def test_tag_range_validation(self):
        def body(red):
            with pytest.raises(RedundancyError):
                yield from anysource_recv(red, CONTROL_TAG_BASE)

        run_world(2, 2.0, body)

    def test_wildcard_counter(self):
        def body(red):
            if red.rank == 0:
                yield from red.recv(source=ANY_SOURCE, tag=7)
            else:
                yield from red.send(1, 0, tag=7)
            return None

        world, rmap, _, _ = run_world(2, 2.0, body)
        # Each physical replica of virtual 0 counts one wildcard recv.
        assert world.counters["wildcard_recvs"] == len(rmap.replicas_of(0))
