"""Tests for the replica map (Eqs. 5-8 realised as rank layout)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError, RedundancyError
from repro.redundancy import ReplicaMap


class TestIntegerDegrees:
    def test_r1_identity(self):
        rmap = ReplicaMap(4, 1.0)
        assert rmap.total_physical == 4
        assert all(rmap.replicas_of(v) == [v] for v in range(4))

    def test_r2_layout(self):
        rmap = ReplicaMap(3, 2.0)
        assert rmap.total_physical == 6
        assert rmap.replicas_of(0) == [0, 3]
        assert rmap.replicas_of(1) == [1, 4]
        assert rmap.replicas_of(2) == [2, 5]

    def test_r3(self):
        rmap = ReplicaMap(2, 3.0)
        assert rmap.total_physical == 6
        assert rmap.replication_of(0) == 3

    def test_primary_rank_equals_virtual(self):
        rmap = ReplicaMap(5, 2.0)
        for virtual in range(5):
            assert rmap.replicas_of(virtual)[0] == virtual


class TestPartialDegrees:
    def test_1_5x_interleaved_replicates_even_ranks(self):
        # The paper: "1.5x means every other process (every even
        # process) has a replica".
        rmap = ReplicaMap(4, 1.5, strategy="interleaved")
        assert rmap.replication_of(0) == 2
        assert rmap.replication_of(1) == 1
        assert rmap.replication_of(2) == 2
        assert rmap.replication_of(3) == 1
        assert rmap.total_physical == 6

    def test_block_strategy_replicates_prefix(self):
        rmap = ReplicaMap(4, 1.5, strategy="block")
        assert [rmap.replication_of(v) for v in range(4)] == [2, 2, 1, 1]

    def test_2_5x(self):
        rmap = ReplicaMap(4, 2.5)
        levels = sorted(rmap.replication_of(v) for v in range(4))
        assert levels == [2, 2, 3, 3]
        assert rmap.total_physical == 10

    def test_virtual_of_inverts_replicas_of(self):
        rmap = ReplicaMap(5, 1.75)
        for virtual in range(5):
            for physical in rmap.replicas_of(virtual):
                assert rmap.virtual_of(physical) == virtual

    def test_replica_index(self):
        rmap = ReplicaMap(4, 2.0)
        for virtual in range(4):
            replicas = rmap.replicas_of(virtual)
            assert rmap.replica_index(replicas[0]) == 0
            assert rmap.replica_index(replicas[1]) == 1

    def test_unknown_physical_rank(self):
        rmap = ReplicaMap(2, 1.0)
        with pytest.raises(RedundancyError):
            rmap.virtual_of(5)

    def test_bad_strategy(self):
        with pytest.raises(ConfigurationError):
            ReplicaMap(2, 1.5, strategy="random")

    def test_spheres(self):
        rmap = ReplicaMap(3, 2.0)
        spheres = rmap.spheres()
        assert len(spheres) == 3
        assert spheres[0] == rmap.replicas_of(0)


class TestInvariants:
    @given(
        st.integers(min_value=1, max_value=64),
        st.floats(min_value=1.0, max_value=3.0, allow_nan=False),
        st.sampled_from(["interleaved", "block"]),
    )
    def test_partition_counts_match_model(self, n, r, strategy):
        rmap = ReplicaMap(n, r, strategy=strategy)
        part = rmap.partition
        # Physical total matches Eq. 8.
        assert rmap.total_physical == part.total_processes
        # Every physical rank mapped exactly once.
        seen = set()
        for virtual in range(n):
            for physical in rmap.replicas_of(virtual):
                assert physical not in seen
                seen.add(physical)
        assert seen == set(range(rmap.total_physical))
        # Level histogram matches the Eq. 6-7 partition.
        levels = [rmap.replication_of(v) for v in range(n)]
        assert levels.count(part.ceil_level) >= part.ceil_count or (
            part.floor_level == part.ceil_level
        )
        assert rmap.total_physical <= math.ceil(n * r)

    @given(st.integers(min_value=2, max_value=40))
    def test_interleave_spreads_evenly(self, n):
        rmap = ReplicaMap(n, 1.5, strategy="interleaved")
        upgraded = [v for v in range(n) if rmap.replication_of(v) == 2]
        # No two adjacent upgrades when exactly half are upgraded and n even.
        if n % 2 == 0:
            assert upgraded == list(range(0, n, 2))
