"""Tests for RedComm: transparent replication of p2p and collectives."""

import pytest

from repro.errors import RedundancyError, VotingError
from repro.mpi import ANY_SOURCE, ANY_TAG, SimMPI, ops
from repro.redundancy import ALL_TO_ALL, MSG_PLUS_HASH, RedComm, ReplicaMap, SphereTracker
from repro.simkit import Environment


def run_redundant(n, r, program_body, mode=ALL_TO_ALL, corruptor=None, kill_plan=()):
    """Run ``program_body(red)`` on every physical rank; return world etc."""
    env = Environment()
    rmap = ReplicaMap(n, r)
    tracker = SphereTracker(rmap)
    world = SimMPI(env, size=rmap.total_physical)
    results = {}

    def program(ctx):
        red = RedComm(ctx, rmap, tracker, mode=mode, corruptor=corruptor)
        value = yield from program_body(red)
        results[ctx.rank] = value
        return value

    world.spawn(program)
    for delay, rank in kill_plan:
        def killer(env, delay=delay, rank=rank):
            yield env.timeout(delay)
            world.kill_rank(rank, cause="test kill")

        env.process(killer(env))
    world.run()
    return world, rmap, tracker, results


class TestTransparency:
    @pytest.mark.parametrize("r", [1.0, 1.25, 1.5, 2.0, 2.5, 3.0])
    def test_allreduce_any_degree(self, r):
        def body(red):
            total = yield from red.allreduce(red.rank, ops.SUM)
            return total

        world, rmap, _, results = run_redundant(4, r, body)
        assert set(results.values()) == {6}
        assert len(results) == rmap.total_physical

    @pytest.mark.parametrize("r", [1.0, 2.0, 2.5])
    def test_ring_p2p(self, r):
        def body(red):
            right = (red.rank + 1) % red.size
            left = (red.rank - 1) % red.size
            payload, status = yield from red.sendrecv(
                red.rank, right, source=left, send_tag=4, recv_tag=4
            )
            return payload, status.source

        _, _, _, results = run_redundant(5, r, body)
        for _, (payload, source) in results.items():
            assert payload == source  # neighbour sent its own rank

    def test_status_reports_virtual_source(self):
        def body(red):
            if red.rank == 0:
                yield from red.send("x", 1, tag=2)
                return None
            if red.rank == 1:
                _, status = yield from red.recv(source=0, tag=2)
                return status.source
            return None

        _, rmap, _, results = run_redundant(2, 2.0, body)
        for physical in rmap.replicas_of(1):
            assert results[physical] == 0

    def test_virtual_identity(self):
        def body(red):
            yield red.env.timeout(0)
            return red.rank, red.size, red.replica_index

        _, rmap, _, results = run_redundant(3, 2.0, body)
        for physical, (virtual, size, index) in results.items():
            assert virtual == rmap.virtual_of(physical)
            assert size == 3
            assert index == rmap.replica_index(physical)

    def test_message_amplification_counted(self):
        def body(red):
            if red.rank == 0:
                yield from red.send(b"data", 1, tag=1)
            elif red.rank == 1:
                yield from red.recv(source=0, tag=1)
            return None

        world_1x, *_ = run_redundant(2, 1.0, body)
        world_2x, *_ = run_redundant(2, 2.0, body)
        # r=2: each of 2 sender replicas sends to 2 receiver replicas.
        assert world_2x.counters["p2p_messages"] == 4 * world_1x.counters["p2p_messages"]

    @pytest.mark.parametrize("r", [1.0, 1.25, 1.5, 1.75, 2.0, 2.5, 3.0])
    def test_physical_message_count_matches_eq1_fanout(self, r):
        """One virtual message costs |senders| x |receivers| physical
        messages — the exact mechanism behind Eq. 1's r factor."""

        def body(red):
            if red.rank == 0:
                yield from red.send(b"one", 1, tag=1)
            elif red.rank == 1:
                yield from red.recv(source=0, tag=1)
            return None

        world, rmap, _, _ = run_redundant(4, r, body)
        expected = len(rmap.replicas_of(0)) * len(rmap.replicas_of(1))
        assert world.counters["p2p_messages"] == expected


class TestWildcards:
    def test_any_source_blocking_recv(self):
        def body(red):
            if red.rank == 0:
                seen = []
                for _ in range(2):
                    payload, status = yield from red.recv(source=ANY_SOURCE, tag=7)
                    assert payload == status.source * 11
                    seen.append(status.source)
                return sorted(seen)
            yield from red.send(red.rank * 11, 0, tag=7)
            return None

        _, rmap, _, results = run_redundant(3, 2.0, body)
        for physical in rmap.replicas_of(0):
            assert results[physical] == [1, 2]

    def test_replicas_agree_on_wildcard_order(self):
        def body(red):
            if red.rank == 0:
                order = []
                for _ in range(3):
                    _, status = yield from red.recv(source=ANY_SOURCE, tag=9)
                    order.append(status.source)
                return tuple(order)
            yield red.env.timeout(0.001 * red.rank)
            yield from red.send(red.rank, 0, tag=9)
            return None

        _, rmap, _, results = run_redundant(4, 2.0, body)
        lead, shadow = rmap.replicas_of(0)
        assert results[lead] == results[shadow]

    def test_any_source_irecv_rejected(self):
        def body(red):
            with pytest.raises(RedundancyError):
                red.irecv(source=ANY_SOURCE, tag=1)
            yield red.env.timeout(0)

        run_redundant(2, 2.0, body)

    def test_any_tag_rejected(self):
        def body(red):
            with pytest.raises(RedundancyError):
                red.irecv(source=0, tag=ANY_TAG)
            yield red.env.timeout(0)

        run_redundant(2, 2.0, body)


class TestModes:
    def test_msg_plus_hash_moves_fewer_bytes(self):
        def body(red):
            if red.rank == 0:
                yield from red.send(b"z" * 50_000, 1, tag=1)
            elif red.rank == 1:
                yield from red.recv(source=0, tag=1)
            return None

        world_full, *_ = run_redundant(2, 3.0, body, mode=ALL_TO_ALL)
        world_hash, *_ = run_redundant(2, 3.0, body, mode=MSG_PLUS_HASH)
        assert world_hash.counters["p2p_bytes"] < world_full.counters["p2p_bytes"]
        # Message *count* identical: hashes still travel as messages.
        assert (
            world_hash.counters["p2p_messages"]
            == world_full.counters["p2p_messages"]
        )

    def test_msg_plus_hash_collectives_correct(self):
        def body(red):
            total = yield from red.allreduce(red.rank + 1, ops.SUM)
            gathered = yield from red.allgather(red.rank)
            return total, tuple(gathered)

        _, _, _, results = run_redundant(4, 2.0, body, mode=MSG_PLUS_HASH)
        assert set(results.values()) == {(10, (0, 1, 2, 3))}

    def test_unknown_mode_rejected(self):
        env = Environment()
        rmap = ReplicaMap(2, 2.0)
        tracker = SphereTracker(rmap)
        world = SimMPI(env, size=rmap.total_physical)
        captured = {}

        def program(ctx):
            captured["ctx"] = ctx
            yield ctx.env.timeout(0)

        world.spawn(program)
        world.run()
        with pytest.raises(RedundancyError):
            RedComm(captured["ctx"], rmap, tracker, mode="quantum")


class TestVotingIntegration:
    def test_corrupt_replica_voted_out_r3(self):
        rmap = ReplicaMap(2, 3.0)
        bad = rmap.replicas_of(0)[1]

        def corruptor(sender, receiver, payload):
            if sender == bad and isinstance(payload, bytes):
                return payload + b"!"
            return payload

        def body(red):
            if red.rank == 0:
                yield from red.send(b"payload", 1, tag=3)
                return None
            payload, _ = yield from red.recv(source=0, tag=3)
            return payload

        world, rmap2, _, results = run_redundant(
            2, 3.0, body, corruptor=corruptor
        )
        for physical in rmap2.replicas_of(1):
            assert results[physical] == b"payload"
        assert world.counters["corrupt_copies_voted_out"] == 3

    def test_corrupt_detection_r2_raises(self):
        def corruptor(sender, receiver, payload):
            if sender >= 2 and isinstance(payload, bytes):  # the shadows
                return payload + b"!"
            return payload

        def body(red):
            if red.rank == 0:
                yield from red.send(b"v", 1, tag=3)
                return None
            try:
                yield from red.recv(source=0, tag=3)
                return "undetected"
            except VotingError:
                return "detected"

        _, rmap, _, results = run_redundant(2, 2.0, body, corruptor=corruptor)
        for physical in rmap.replicas_of(1):
            assert results[physical] == "detected"


class TestReplicaDeath:
    def test_survivors_finish_long_collective_loop(self):
        def body(red):
            acc = 0
            for iteration in range(100):
                acc += yield from red.allreduce(red.rank + iteration, ops.SUM)
            return acc

        _, rmap, tracker, results = run_redundant(
            4, 2.0, body, kill_plan=[(0.0004, 6)]
        )
        assert not tracker.job_failed
        values = set(results.values())
        assert len(values) == 1  # every survivor computed the same sums
        assert len(results) == rmap.total_physical - 1

    def test_pending_recv_from_dead_replica_cancelled(self):
        def body(red):
            if red.rank == 1:
                payload, _ = yield from red.recv(source=0, tag=5)
                return payload
            if red.rank == 0:
                yield red.env.timeout(0.01)  # outlive the kill
                yield from red.send("late", 1, tag=5)
            return None

        _, rmap, _, results = run_redundant(
            2, 2.0, body, kill_plan=[(0.001, 2)]  # virtual 0's shadow
        )
        # Virtual 0's shadow (physical 2) died before sending; receivers
        # still complete from the surviving replica's copy.
        for physical in rmap.replicas_of(1):
            assert results[physical] == "late"

    def test_send_to_partially_dead_sphere(self):
        def body(red):
            if red.rank == 0:
                yield red.env.timeout(0.01)
                yield from red.send("ping", 1, tag=6)
                return None
            payload, _ = yield from red.recv(source=0, tag=6)
            return payload

        _, rmap, tracker, results = run_redundant(
            2, 2.0, body, kill_plan=[(0.001, 3)]  # virtual 1's shadow
        )
        survivor = rmap.replicas_of(1)[0]
        assert results[survivor] == "ping"
        assert not tracker.job_failed
