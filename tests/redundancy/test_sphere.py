"""Tests for sphere liveness tracking."""

import pytest

from repro.errors import RedundancyError
from repro.redundancy import ReplicaMap, SphereTracker


@pytest.fixture
def tracker():
    return SphereTracker(ReplicaMap(3, 2.0))


class TestLiveness:
    def test_initially_all_alive(self, tracker):
        assert tracker.alive_replicas(0) == tracker.replica_map.replicas_of(0)
        assert not tracker.job_failed

    def test_one_death_keeps_sphere_alive(self, tracker):
        shadow = tracker.replica_map.replicas_of(1)[1]
        tracker.notice_death(shadow)
        assert tracker.alive_replicas(1) == [1]
        assert not tracker.job_failed

    def test_sphere_exhaustion_fires_once(self, tracker):
        fired = []
        tracker.on_sphere_exhausted(fired.append)
        for physical in tracker.replica_map.replicas_of(2):
            tracker.notice_death(physical)
        # Kill another whole sphere: no second callback.
        for physical in tracker.replica_map.replicas_of(0):
            tracker.notice_death(physical)
        assert fired == [2]
        assert tracker.job_failed
        assert tracker.exhausted_virtual_rank == 2

    def test_duplicate_death_ignored(self, tracker):
        tracker.notice_death(0)
        tracker.notice_death(0)
        assert tracker.death_counts() == {0: 1}

    def test_lead_replica_moves_on_death(self, tracker):
        replicas = tracker.replica_map.replicas_of(0)
        assert tracker.lead_replica(0) == replicas[0]
        tracker.notice_death(replicas[0])
        assert tracker.lead_replica(0) == replicas[1]

    def test_lead_replica_of_exhausted_sphere_raises(self, tracker):
        for physical in tracker.replica_map.replicas_of(0):
            tracker.notice_death(physical)
        with pytest.raises(RedundancyError):
            tracker.lead_replica(0)

    def test_is_dead(self, tracker):
        tracker.notice_death(4)
        assert tracker.is_dead(4)
        assert not tracker.is_dead(0)

    def test_death_counts_by_virtual(self, tracker):
        rmap = tracker.replica_map
        tracker.notice_death(rmap.replicas_of(0)[0])
        tracker.notice_death(rmap.replicas_of(1)[0])
        tracker.notice_death(rmap.replicas_of(1)[1])
        assert tracker.death_counts() == {0: 1, 1: 2}


class TestUnreplicated:
    def test_r1_single_death_is_fatal(self):
        tracker = SphereTracker(ReplicaMap(3, 1.0))
        fired = []
        tracker.on_sphere_exhausted(fired.append)
        tracker.notice_death(1)
        assert fired == [1]

    def test_partial_only_unreplicated_fatal(self):
        rmap = ReplicaMap(4, 1.5)  # even virtual ranks have replicas
        tracker = SphereTracker(rmap)
        fired = []
        tracker.on_sphere_exhausted(fired.append)
        tracker.notice_death(0)  # replicated: survives
        assert fired == []
        tracker.notice_death(1)  # unreplicated: fatal
        assert fired == [1]
